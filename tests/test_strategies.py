"""Tests for the parent-selection strategies (§II-E, §IV)."""

import pytest

from repro.core.strategies import (
    Candidate,
    DelayAwareStrategy,
    FirstComeStrategy,
    GerontocraticStrategy,
    HeterogeneityAwareStrategy,
    LoadBalancingStrategy,
    make_strategy,
)


def cand(peer, arrival=0.0, rtt=0.1, uptime=10.0, load=2, capacity=1.0):
    return Candidate(peer, arrival, rtt, uptime, load, capacity)


class TestFirstCome:
    def setup_method(self):
        self.s = FirstComeStrategy()

    def test_earliest_arrival_wins(self):
        a, b = cand(1, arrival=1.0), cand(2, arrival=2.0)
        assert self.s.best([a, b]) is a

    def test_never_swaps_incumbent(self):
        incumbent = cand(1, arrival=1.0)
        newcomer = cand(2, arrival=5.0, rtt=0.0001)
        assert not self.s.prefers(newcomer, incumbent)

    def test_supports_symmetric_deactivation(self):
        assert self.s.supports_symmetric


class TestDelayAware:
    def setup_method(self):
        self.s = DelayAwareStrategy()

    def test_lowest_rtt_wins(self):
        a, b = cand(1, rtt=0.2), cand(2, rtt=0.05)
        assert self.s.best([a, b]) is b

    def test_swap_needs_margin(self):
        incumbent = cand(1, rtt=0.100)
        barely = cand(2, rtt=0.099)
        clearly = cand(3, rtt=0.050)
        assert not self.s.prefers(barely, incumbent)
        assert self.s.prefers(clearly, incumbent)

    def test_no_symmetric_optimization(self):
        assert not self.s.supports_symmetric


class TestGerontocratic:
    def test_highest_uptime_wins(self):
        s = GerontocraticStrategy()
        young, old = cand(1, uptime=5.0), cand(2, uptime=500.0)
        assert s.best([young, old]) is old

    def test_prefers_older(self):
        s = GerontocraticStrategy()
        assert s.prefers(cand(2, uptime=500.0), cand(1, uptime=5.0))


class TestLoadBalancing:
    def test_fewest_children_wins(self):
        s = LoadBalancingStrategy()
        busy, idle = cand(1, load=7), cand(2, load=0)
        assert s.best([busy, idle]) is idle


class TestHeterogeneity:
    def test_highest_capacity_wins(self):
        s = HeterogeneityAwareStrategy()
        slow, fast = cand(1, capacity=0.5), cand(2, capacity=4.0)
        assert s.best([slow, fast]) is fast


class TestCommonMachinery:
    def test_ties_break_by_arrival_then_id(self):
        s = DelayAwareStrategy()
        a = cand(3, arrival=2.0, rtt=0.1)
        b = cand(1, arrival=1.0, rtt=0.1)
        assert s.best([a, b]) is b
        c = cand(2, arrival=1.0, rtt=0.1)
        assert s.best([b, c]) is b  # same arrival: lower id

    def test_worst_is_opposite_of_best(self):
        s = DelayAwareStrategy()
        cands = [cand(i, rtt=0.01 * i) for i in range(1, 5)]
        assert s.best(cands).peer == 1
        assert s.worst(cands).peer == 4

    def test_sort_orders_by_score(self):
        s = GerontocraticStrategy()
        cands = [cand(1, uptime=10), cand(2, uptime=30), cand(3, uptime=20)]
        assert [c.peer for c in s.sort(cands)] == [2, 3, 1]

    def test_make_strategy_roundtrip(self):
        for name in ("first-come", "delay-aware", "gerontocratic", "load-balancing", "heterogeneity"):
            assert make_strategy(name).name == name

    def test_make_strategy_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("oracle")
