"""Live multi-process UDP runner (DESIGN.md §13).

The smoke here is deliberately small — 16 nodes over 2 worker OS
processes — so it runs on every push; the CI live-smoke job drives the
64-node ``repro live --size small`` configuration.  What it pins is the
whole seam stack at once: checkpoint bootstrap, wire codec, asyncio
clock/transport, coordinator handshake, quiescence detection, and the
cross-check against the same-seed simulated leg.
"""

import json
import pathlib

import pytest

from repro.experiments.live_runner import (
    LiveSpec,
    live_sources,
    run_live,
    synthesize_checkpoint,
)
from repro.experiments.bootstrap import CHECKPOINT_FORMAT


@pytest.mark.live
def test_live_smoke_two_workers(tmp_path):
    """16 nodes across 2 OS processes over real UDP: full delivery, a
    complete/acyclic tree, clean worker shutdown, and live/sim agreement."""
    out = tmp_path / "live.json"
    spec = LiveSpec(nodes=16, workers=2, messages=3, timeout=30.0)
    outcome = run_live(spec, json_path=str(out))

    assert outcome.clean_shutdown, "workers had to be terminated"
    assert outcome.delivered_fraction == 1.0
    assert outcome.all_structures_ok
    assert outcome.cross_check_ok is True
    assert outcome.rx_errors == 0
    # Real cross-process traffic happened: a 16-node dissemination plus
    # overlay control plane far exceeds the node count in packets.
    assert outcome.rx_packets > spec.nodes

    data = json.loads(out.read_text())
    assert data["harness"] == "live-udp"
    assert data["delivered_fraction"] == 1.0
    assert data["clean_shutdown"] is True
    assert data["cross_check_ok"] is True


@pytest.mark.live
def test_live_multistream_three_workers(tmp_path):
    """Two concurrent streams across three workers emerge two complete
    per-stream structures (§IV) over the same live overlay."""
    spec = LiveSpec(nodes=12, workers=3, messages=2, streams=2, timeout=30.0)
    outcome = run_live(spec)
    assert outcome.clean_shutdown
    assert outcome.delivered_fraction == 1.0
    assert len(outcome.streams) == 2
    assert outcome.all_structures_ok
    assert outcome.cross_check_ok is True


def test_synthesized_checkpoint_shape(tmp_path):
    path = synthesize_checkpoint(24, tmp_path / "ck.json", seed=7)
    data = json.loads(pathlib.Path(path).read_text())
    assert data["format"] == CHECKPOINT_FORMAT
    assert data["n"] == 24
    assert len(data["nodes"]) == 24
    for row in data["nodes"]:
        assert row["active"], "synthesized overlay must be connected-ready"
        assert row["id"] not in row["active"]


def test_live_sources_spread():
    """Same spread rule as the simulator's spread_sources, so the live
    and sim legs inject from identical publishers."""
    assert live_sources(64, 1) == [0]
    assert live_sources(64, 4) == [0, 16, 32, 48]
    assert len(set(live_sources(10, 10))) == 10


def test_live_spec_validation():
    with pytest.raises(ValueError):
        LiveSpec(nodes=16, workers=0)
    with pytest.raises(ValueError):
        LiveSpec(nodes=2, workers=2)
    with pytest.raises(ValueError):
        LiveSpec(nodes=16, workers=2, messages=0)


def test_protocol_modules_are_simulator_free():
    """The runtime-seam guarantee: protocol code talks to Clock and
    MessageTransport only — no direct Simulator/Network attribute access
    and no simulator imports.  (The legacy ``node.network`` / ``node.sim``
    aliases live in sim/node.py for simulator-side callers; the protocol
    modules themselves must not use them.)"""
    src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
    for rel in ("core/brisa.py", "membership/hyparview.py", "membership/cyclon.py"):
        text = (src / rel).read_text()
        for forbidden in (
            "self.network.",
            "self.sim.",
            "from repro.sim.engine",
            "from repro.sim.network",
            "import repro.sim",
        ):
            assert forbidden not in text, f"{rel} uses {forbidden!r}"
