"""Tests for the stream-splitting extension (§IV)."""

import pytest

from repro.core.splitting import (
    StripeAssignment,
    StripeReassembler,
    split_bandwidth_share,
)


class TestStripeAssignment:
    def test_round_robin_mapping(self):
        a = StripeAssignment((10, 20))
        assert a.parent_for(0) == 10
        assert a.parent_for(1) == 20
        assert a.parent_for(2) == 10
        assert a.stripe_of(5) == 1

    def test_sequences_for_parent(self):
        a = StripeAssignment((10, 20, 30))
        assert a.sequences_for_parent(20, upto=7) == [1, 4]
        assert a.sequences_for_parent(10, upto=4) == [0, 3]

    def test_without_parent_redistributes(self):
        a = StripeAssignment((10, 20))
        b = a.without_parent(20)
        assert b is not None
        assert set(b.parents) == {10}
        assert b.parent_for(1) == 10

    def test_without_last_parent_returns_none(self):
        assert StripeAssignment((10,)).without_parent(10) is None

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            StripeAssignment(())

    def test_every_sequence_covered_after_failure(self):
        a = StripeAssignment((1, 2, 3, 4))
        b = a.without_parent(3)
        for seq in range(20):
            assert b.parent_for(seq) in (1, 2, 4)


class TestStripeReassembler:
    def test_in_order_release(self):
        r = StripeReassembler()
        assert r.offer(0) == [0]
        assert r.offer(1) == [1]
        assert r.delivered == [0, 1]

    def test_out_of_order_buffered_then_released(self):
        r = StripeReassembler()
        assert r.offer(2) == []
        assert r.offer(1) == []
        assert r.offer(0) == [0, 1, 2]
        assert r.buffered == 0

    def test_duplicates_and_stale_ignored(self):
        r = StripeReassembler()
        r.offer(0)
        assert r.offer(0) == []
        r.offer(2)
        assert r.offer(2) == []

    def test_missing_before(self):
        r = StripeReassembler()
        r.offer(1)
        r.offer(4)
        assert r.missing_before(5) == [0, 2, 3]

    def test_start_seq(self):
        r = StripeReassembler(start_seq=10)
        assert r.offer(9) == []  # stale
        assert r.offer(10) == [10]


def test_split_bandwidth_share_balances_parents():
    a = StripeAssignment((1, 2))
    share = split_bandwidth_share(a, payload_bytes=100, messages=10)
    assert share == {1: 500, 2: 500}


def test_split_bandwidth_share_uneven_stripes():
    a = StripeAssignment((1, 1, 2))
    share = split_bandwidth_share(a, payload_bytes=10, messages=9)
    assert share == {1: 60, 2: 30}
