"""Tests for configuration validation."""

import pytest

from repro.config import (
    BrisaConfig,
    CyclonConfig,
    GossipConfig,
    HyParViewConfig,
    SimpleTreeConfig,
    StreamConfig,
    TagConfig,
)
from repro.errors import ConfigError


class TestHyParViewConfig:
    def test_defaults_match_paper(self):
        cfg = HyParViewConfig()
        assert cfg.active_size == 4
        assert cfg.expansion_factor == 2.0
        assert cfg.max_active == 8

    def test_max_active_rounds_up(self):
        assert HyParViewConfig(active_size=3, expansion_factor=1.5).max_active == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"active_size": 0},
            {"expansion_factor": 0.5},
            {"arwl": 2, "prwl": 3},
            {"shuffle_period": 0},
            {"keepalive_period": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            HyParViewConfig(**kwargs)


class TestBrisaConfig:
    def test_tree_defaults(self):
        cfg = BrisaConfig()
        assert cfg.mode == "tree"
        assert cfg.num_parents == 1
        assert cfg.cycle_predictor == "path"

    def test_dag_defaults_to_depth_predictor(self):
        cfg = BrisaConfig(mode="dag", num_parents=2)
        assert cfg.cycle_predictor == "depth"

    def test_dag_with_path_predictor_rejected(self):
        with pytest.raises(ConfigError):
            BrisaConfig(mode="dag", num_parents=2, cycle_predictor="path")

    def test_tree_with_many_parents_rejected(self):
        with pytest.raises(ConfigError):
            BrisaConfig(mode="tree", num_parents=2)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            BrisaConfig(strategy="psychic")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            BrisaConfig(mode="ring")

    def test_with_helper_replaces_fields(self):
        cfg = BrisaConfig().with_(strategy="delay-aware")
        assert cfg.strategy == "delay-aware"
        assert cfg.mode == "tree"

    def test_bloom_predictor_allowed_for_dag(self):
        cfg = BrisaConfig(mode="dag", num_parents=3, cycle_predictor="bloom")
        assert cfg.cycle_predictor == "bloom"


class TestStreamConfig:
    def test_paper_defaults(self):
        cfg = StreamConfig()
        assert cfg.count == 500 and cfg.rate == 5.0
        assert cfg.duration == pytest.approx(99.8)

    @pytest.mark.parametrize("kwargs", [{"count": 0}, {"rate": 0}, {"payload_bytes": -1}])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StreamConfig(**kwargs)


class TestGossipConfig:
    def test_fanout_defaults_to_ln_n(self):
        cfg = GossipConfig()
        assert cfg.effective_fanout(512) == 7  # ceil(ln 512) = ceil(6.24)
        assert cfg.effective_fanout(128) == 5

    def test_explicit_fanout_wins(self):
        assert GossipConfig(fanout=3).effective_fanout(512) == 3

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            GossipConfig(anti_entropy_rate_factor=0)


class TestOtherConfigs:
    def test_cyclon_validation(self):
        with pytest.raises(ConfigError):
            CyclonConfig(view_size=4, shuffle_length=5)

    def test_simpletree_validation(self):
        with pytest.raises(ConfigError):
            SimpleTreeConfig(max_children=-1)
        assert SimpleTreeConfig().max_children == 0

    def test_tag_validation(self):
        with pytest.raises(ConfigError):
            TagConfig(pull_period=0)
        with pytest.raises(ConfigError):
            TagConfig(max_children=0)
        assert TagConfig().connection_setup_rtts == 1.5
