"""Churn-at-scale: driver determinism, CSR crash purging, link leaks.

Covers the churn half of the PR-4 tentpole (DESIGN.md §9): the
:class:`ChurnDriver` must be schedule-deterministic per seed across both
flood kernels, :meth:`Network.crash` must purge CSR-installed links in
both directions, slotted slots must recycle cleanly, and the
accept-after-notice link leak (a ``NeighborAccept`` processed after its
sender's crash notice already fired used to re-register a permanent link
to the dead node) must stay fixed.
"""

from __future__ import annotations

import pytest

from repro.baselines.flood import SlottedFloodNode
from repro.errors import SimulationError
from repro.experiments.scale_flood import (
    build_static_flood_overlay,
    flood_node_factory,
    run_scale_flood,
)
from repro.membership.hyparview import HyParViewNode
from repro.sim.churn import ChurnDriver
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Metrics
from repro.sim.network import Network
from repro.sim.trace import ConstChurn, Trace


def churned_overlay(kernel: str, n: int = 256, *, seed: int = 7,
                    percent: float = 10.0, periods: int = 5):
    """Static overlay + ChurnDriver run to idle; returns (sim, net, nodes, driver)."""
    sim, net, nodes = build_static_flood_overlay(n, seed=seed, kernel=kernel)
    net.autostart_timers = False  # joiners stay message-driven: heap drains
    factory = flood_node_factory(
        kernel, net, nodes[0].hpv_config,
        slot_kernel=getattr(nodes[0], "kernel", None),
    )

    def join_fn():
        node = net.spawn(factory)
        node.join(nodes[0].node_id)
        return node

    period = 2.0
    trace = Trace((ConstChurn(0.0, period * periods, percent, period),))
    driver = ChurnDriver(sim, net, trace, join_fn, protected=(nodes[0].node_id,))
    driver.apply()
    sim.run_until_idle()
    return sim, net, nodes, driver


class TestChurnDeterminism:
    def test_same_seed_produces_identical_schedules(self):
        _, _, _, a = churned_overlay("object", seed=3)
        _, _, _, b = churned_overlay("object", seed=3)
        assert a.stats.kills == b.stats.kills > 0
        assert a.stats.kill_times == b.stats.kill_times
        assert a.stats.join_times == b.stats.join_times

    def test_schedules_identical_across_kernels(self):
        """The kill/join schedule must not depend on the delivery kernel:
        slot recycling and CSR purging agree with Network.crash."""
        _, _, _, a = churned_overlay("object", seed=5)
        _, _, _, b = churned_overlay("slotted", seed=5)
        assert a.stats.kills == b.stats.kills > 0
        assert a.stats.kill_times == b.stats.kill_times
        assert a.stats.join_times == b.stats.join_times

    @pytest.mark.parametrize("kernel", ["object", "slotted"])
    def test_scale_churn_run_is_reproducible(self, kernel):
        a = run_scale_flood(256, 6, seed=13, kernel=kernel, churn_percent=6.0)
        b = run_scale_flood(256, 6, seed=13, kernel=kernel, churn_percent=6.0)
        for field in ("deliveries", "receptions", "events", "sim_time",
                      "kills", "joins", "survivors", "delivered_fraction"):
            assert getattr(a, field) == getattr(b, field), field
        assert a.kills > 0

    def test_survivor_delivery_stays_high_under_churn(self):
        """The headline acceptance shape (the xl run is the CI smoke):
        survivors of a churned stream still see ≥99% of it."""
        for kernel in ("object", "slotted"):
            result = run_scale_flood(512, 10, seed=3, kernel=kernel, churn_percent=2.0)
            assert result.kills > 0
            assert result.survivors < 511
            assert result.delivered_fraction >= 0.99


class TestMultiStreamChurnAtScale:
    """Multi-stream churn at the xl rung (DESIGN.md §10): 4 concurrent
    publishers over a 10k slotted overlay losing 1% of the population
    mid-stream — every stream must still reach ≥99% of its surviving
    audience, on recycled slot planes."""

    def test_xl_multistream_churn_slotted(self):
        result = run_scale_flood(
            10_000, 6, rate=20.0, seed=3,
            kernel="slotted", churn_percent=1.0, streams=4,
        )
        assert result.streams == 4
        assert result.kills > 0
        assert result.survivors < 10_000 - 1
        assert len(result.per_stream) == 4
        # Sources are spread over the population, all protected.
        assert len({row["source"] for row in result.per_stream}) == 4
        for row in result.per_stream:
            assert row["delivered_fraction"] >= 0.99, row
        assert result.delivered_fraction >= 0.99

    def test_multistream_churn_is_reproducible(self):
        a = run_scale_flood(256, 5, seed=21, kernel="slotted",
                            churn_percent=6.0, streams=3)
        b = run_scale_flood(256, 5, seed=21, kernel="slotted",
                            churn_percent=6.0, streams=3)
        assert a.per_stream == b.per_stream
        assert a.kills == b.kills > 0
        assert a.events == b.events


class TestCrashPurgesCsrLinks:
    """Network.crash on overlays wired through register_links_csr
    (regression coverage for the PR-4 audit — both directions must go)."""

    @pytest.mark.parametrize("kernel", ["object", "slotted"])
    def test_crash_purges_links_in_both_directions(self, kernel):
        sim, net, nodes = build_static_flood_overlay(64, seed=2, kernel=kernel)
        victim = nodes[7]
        peers = list(victim.active)
        assert peers and all(net.linked(victim.node_id, p) for p in peers)
        net.crash(victim.node_id)
        assert victim.node_id not in net.links
        for nid, linkset in net.links.items():
            assert victim.node_id not in linkset, f"stale reverse link at {nid}"
        # After the failure notices fire, no surviving view holds the dead node.
        sim.run_until_idle()
        for p in peers:
            assert victim.node_id not in nodes[p].active
        net.check_link_invariants()

    @pytest.mark.parametrize("kernel", ["object", "slotted"])
    def test_link_invariants_hold_after_heavy_churn(self, kernel):
        sim, net, nodes, driver = churned_overlay(kernel, seed=11, percent=12.0)
        assert driver.stats.kills > 0
        net.check_link_invariants()
        for node in net.nodes.values():
            if node.alive:
                for peer in node.active:
                    assert net.alive(peer), f"dead peer {peer} pinned in a view"

    def test_check_link_invariants_detects_violations(self):
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(0.001), Metrics())
        a = net.spawn(lambda n, i: HyParViewNode(n, i))
        b = net.spawn(lambda n, i: HyParViewNode(n, i))
        net.register_link(a.node_id, b.node_id)
        net.check_link_invariants()
        net.links[a.node_id].add(99)  # dangling one-directional entry
        with pytest.raises(SimulationError):
            net.check_link_invariants()


class TestSlotRecycling:
    def test_crashed_slot_is_recycled_zeroed(self):
        sim, net, nodes = build_static_flood_overlay(32, seed=4, kernel="slotted")
        kernel = nodes[0].kernel
        source, victim = nodes[0], nodes[9]
        source.inject(0, 0, 128)
        sim.run_until_idle()
        slot = victim.slot
        assert kernel.plane(0).delivered[slot] == 1
        net.crash(victim.node_id)
        assert victim.node_id not in kernel.slot_of
        assert kernel.slot_delivered(slot) == 0
        assert kernel.slot_duplicates(slot) == 0
        assert kernel.slot_payload_bytes(slot) == 0
        assert kernel.rx_bytes[slot] == 0
        assert kernel.fanout_rows[slot] == []
        # The next joiner takes over the freed slot with a clean seen map.
        hpv = source.hpv_config
        joiner = net.spawn(lambda n, i: SlottedFloodNode(n, i, hpv, kernel=kernel))
        assert joiner.slot == slot
        assert joiner.delivered_count(0) == 0

    def test_fresh_nodes_extend_all_arrays(self):
        sim, net, nodes = build_static_flood_overlay(16, seed=6, kernel="slotted")
        kernel = nodes[0].kernel
        nodes[0].inject(0, 0, 64)
        sim.run_until_idle()
        hpv = nodes[0].hpv_config
        joiner = net.spawn(lambda n, i: SlottedFloodNode(n, i, hpv, kernel=kernel))
        assert kernel.capacity == 17
        assert joiner.slot == 16
        # Existing planes (seen maps + counters) grew to cover the slot.
        for plane in kernel.planes:
            assert len(plane.delivered) == 17
            for row in plane.rows:
                assert len(row) == 17
        assert joiner.delivered_count(0) == 0

    def test_crashed_slot_is_recycled_zeroed_in_every_plane(self):
        """Multi-stream slot-plane recycling (DESIGN.md §10): a crash
        must zero the slot's cells in *every* stream plane before a
        churn joiner can inherit it."""
        sim, net, nodes = build_static_flood_overlay(32, seed=4, kernel="slotted")
        kernel = nodes[0].kernel
        victim = nodes[9]
        for stream, source in enumerate(nodes[:3]):
            source.inject(stream, 0, 128)
        sim.run_until_idle()
        slot = victim.slot
        assert len(kernel.planes) == 3
        for stream in range(3):
            assert kernel.plane(stream).delivered[slot] == 1
        assert victim.delivered_count(1) == 1
        net.crash(victim.node_id)
        for plane in kernel.planes:
            assert plane.delivered[slot] == 0
            assert plane.duplicates[slot] == 0
            assert plane.payload_bytes[slot] == 0
            for row in plane.rows:
                assert row[slot] == 0
        hpv = nodes[0].hpv_config
        joiner = net.spawn(lambda n, i: SlottedFloodNode(n, i, hpv, kernel=kernel))
        assert joiner.slot == slot
        for stream in range(3):
            assert joiner.delivered_count(stream) == 0


class TestBrisaSlottedChurn:
    """Churn against the slotted BRISA kernel (DESIGN.md §11): a crash
    must release the victim's slot with *all* structural state zeroed —
    tree-edge rows, relay rows, levels, Bloom filter row, maintenance
    cache — and hand the clean slot to the next joiner."""

    @staticmethod
    def overlay(n: int = 96, *, seed: int = 3, predictor: str = "bloom"):
        from repro.config import BrisaConfig
        from repro.core.brisa_slotted import SlottedBrisaKernel
        from repro.experiments.common import Testbed, brisa_factory

        if predictor == "bloom":
            cfg = BrisaConfig(mode="dag", num_parents=2,
                              cycle_predictor="bloom", bloom_bits=256)
        else:
            cfg = BrisaConfig(mode="tree")
        bed = Testbed(seed=seed, latency=ConstantLatency(0.001, seed=seed),
                      record_deliveries=False)
        kernel = SlottedBrisaKernel(bed.network, cfg)
        kernel.bulk_rows = True
        try:
            bed.populate(n, brisa_factory(cfg, kernel=kernel),
                         bootstrap="synthesized", validate=True,
                         defer_timers=True)
        finally:
            kernel.bulk_rows = False
        kernel.install_rows([node.node_id for node in bed.nodes],
                            bed.last_topology)
        bed.stop_shuffles()
        return bed, kernel, brisa_factory(cfg, kernel=kernel)

    def test_crash_releases_slot_with_structure_zeroed(self):
        bed, kernel, factory = self.overlay()
        sim, net = bed.sim, bed.network
        source = bed.nodes[0]
        for seq in range(3):
            sim.call_at(sim.now + seq / 50.0, source.inject, 0, seq, 64)
        sim.run_until_idle()
        victim = bed.nodes[17]
        slot = victim.slot
        plane = kernel.plane(0)
        # The stream materialized structure at the victim...
        assert plane.states[slot] is not None
        assert kernel.delivered_count(slot, 0) == 3
        assert plane.parent_rows[slot] and plane.levels[slot] > 0
        assert plane.matrix is not None and plane.matrix.as_int(slot) != 0
        net.crash(victim.node_id)
        # ...and the release zeroed every cell of the slot.
        assert victim.node_id not in kernel.slot_of
        assert slot in kernel._free
        assert plane.states[slot] is None
        assert plane.parent_rows[slot] == [] and plane.relay_rows[slot] == []
        assert plane.levels[slot] == 0 and plane.active_in[slot] == 0
        assert plane.delivered[slot] == 0 and plane.duplicates[slot] == 0
        assert plane.payload_bytes[slot] == 0
        assert plane.maint_src[slot] is None and plane.maint_cand[slot] is None
        assert plane.maint_meta[slot] is None and plane.maint_targets[slot] is None
        assert plane.matrix.as_int(slot) == 0
        assert all(row[slot] == 0 for row in plane.rows)
        assert kernel.rx_bytes[slot] == 0
        assert kernel.neighbor_rows[slot] == []
        sim.run_until_idle()  # failure notices + repairs settle
        net.check_link_invariants()
        # The next joiner inherits the recycled slot with a clean book.
        net.autostart_timers = False
        joiner = net.spawn(factory)
        assert joiner.slot == slot
        joiner.join(source.node_id)
        sim.run_until_idle()
        assert joiner.delivered_count(0) == 0
        assert joiner.tree_parents(0) == []
        net.check_link_invariants()

    def test_driver_churn_keeps_invariants_on_slotted_brisa(self):
        """A full ChurnDriver episode over the slotted BRISA stack:
        kill/join schedule applies cleanly, released slots recycle, link
        invariants hold, and no surviving view pins a dead peer."""
        bed, kernel, factory = self.overlay(n=128, seed=9, predictor="tree")
        sim, net = bed.sim, bed.network
        net.autostart_timers = False
        source = bed.nodes[0]
        for seq in range(4):
            sim.call_at(sim.now + seq / 50.0, source.inject, 0, seq, 64)

        def join_fn():
            node = net.spawn(factory)
            node.join(source.node_id)
            return node

        trace = Trace((ConstChurn(0.0, 4.0, 8.0, 2.0),))
        driver = ChurnDriver(sim, net, trace, join_fn,
                             protected=(source.node_id,))
        driver.apply()
        sim.run_until_idle()
        assert driver.stats.kills > 0
        net.check_link_invariants()
        dead = [node for node in bed.nodes if not node.alive]
        assert dead
        for node in dead:
            assert node.node_id not in kernel.slot_of
        for node in net.nodes.values():
            if node.alive:
                for peer in node.active:
                    assert net.alive(peer), f"dead peer {peer} pinned in a view"
        # Slot conservation: every slot is either owned by a live node
        # or parked on the free list — none leak, none double-book.
        assert len(kernel.slot_of) + len(kernel._free) == kernel.capacity
        assert len(kernel.slot_of) == sum(1 for n in net.nodes.values() if n.alive)


class TestAcceptAfterNoticeLeak:
    """A NeighborAccept landing after its sender's crash notice has fired
    used to re-register the link with nothing left in flight to reset it
    — a permanent ``links`` entry for a dead node plus a dead peer pinned
    in the survivor's active view (reachable whenever delivery delay
    exceeds the keep-alive detection delay, e.g. under occupancy
    backlog).  ``register_link`` now refuses dead endpoints and routes
    the live side through the regular failure-detection path instead."""

    def test_accept_after_notice_does_not_leak(self):
        sim = Simulator(seed=5)
        # Propagation (2 s) far beyond the detection delay (≤0.15 s):
        # the notice always beats the crossing NeighborAccept.
        net = Network(sim, ConstantLatency(2.0), Metrics(), keepalive_period=0.1)
        net.autostart_timers = False
        a = net.spawn(lambda n, i: HyParViewNode(n, i))
        b = net.spawn(lambda n, i: HyParViewNode(n, i))
        a.passive.add(b.node_id)
        a._maybe_replace()          # A → Neighbor(B), arrives at t=2
        sim.run(until=2.5)          # B accepted: link up, accept in flight
        assert b.node_id in net.links
        net.crash(b.node_id)        # notice to A ≈ t=2.55–2.65 < accept t=4
        sim.run_until_idle()
        assert b.node_id not in a.active
        assert b.node_id not in net.links
        for linkset in net.links.values():
            assert b.node_id not in linkset
        net.check_link_invariants()

    def test_register_link_with_dead_peer_notifies_live_side(self):
        sim = Simulator(seed=8)
        net = Network(sim, ConstantLatency(0.001), Metrics(), keepalive_period=0.1)
        net.autostart_timers = False  # no shuffle timers: the heap drains
        a = net.spawn(lambda n, i: HyParViewNode(n, i))
        b = net.spawn(lambda n, i: HyParViewNode(n, i))
        net.crash(b.node_id)
        net.register_link(a.node_id, b.node_id)
        assert not net.links  # connect to a dead host records nothing
        a.active[b.node_id] = None  # what a confused caller would hold
        sim.run_until_idle()
        assert b.node_id not in a.active  # failure path cleaned it up
