"""Failure-injection stress tests: BRISA under hostile conditions."""

import pytest

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.structure import extract_structure, is_complete_structure
from repro.experiments.common import build_brisa_testbed


class TestMassFailures:
    def test_simultaneous_40pct_failure(self):
        """§II-A: HyParView tolerates large correlated failures; BRISA's
        repairs must rebuild a complete structure on the survivors."""
        bed = build_brisa_testbed(64, seed=81)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=400, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 4.0)
        rng = bed.sim.rng("mass-kill")
        victims = rng.sample([n for n in bed.alive_nodes() if n is not source], 25)
        for v in victims:
            bed.network.crash(v.node_id)
        bed.sim.run(until=bed.sim.now + 36.0)
        survivors = bed.alive_nodes()
        assert len(survivors) == 64 - 25
        g = extract_structure(survivors, 0)
        ok, reason = is_complete_structure(g, source.node_id, set(bed.alive_ids()))
        assert ok, reason
        # Stream continuity: survivors recovered the full stream.
        injected = {seq for (s, seq) in bed.metrics.injections if s == 0}
        for node in survivors:
            if node is source:
                continue
            missing = injected - node.streams[0].delivered
            assert len(missing) == 0, (node.node_id, sorted(missing)[:5])

    def test_repeated_waves_of_failures(self):
        bed = build_brisa_testbed(48, seed=82)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=600, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 3.0)
        rng = bed.sim.rng("waves")
        for wave in range(4):
            alive = [n for n in bed.alive_nodes() if n is not source]
            for v in rng.sample(alive, 4):
                bed.network.crash(v.node_id)
            bed.sim.run(until=bed.sim.now + 12.0)
        survivors = bed.alive_nodes()
        g = extract_structure(survivors, 0)
        ok, reason = is_complete_structure(g, source.node_id, set(bed.alive_ids()))
        assert ok, reason


class TestDroppedAccounting:
    def test_in_flight_messages_to_crashed_nodes_are_counted(self):
        """Messages racing a crash used to vanish silently; the TCP-reset
        path in ``Network._deliver`` now counts them under ``dropped``.
        Parents keep pushing to a dead child until failure detection
        kicks in (~1 keep-alive period), so a mid-stream mass failure
        must always produce drops."""
        bed = build_brisa_testbed(48, seed=86)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=400, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 4.0)
        assert bed.metrics.counters.get("dropped", 0) == 0
        rng = bed.sim.rng("drop-kill")
        for v in rng.sample([n for n in bed.alive_nodes() if n is not source], 12):
            bed.network.crash(v.node_id)
        bed.sim.run(until=bed.sim.now + 30.0)
        dropped = bed.metrics.counters["dropped"]
        assert dropped > 0
        # Drops stay bounded by the detection window: they stop once the
        # failure detector has fired everywhere, well below the total
        # message volume the survivors exchanged.
        total_msgs = sum(
            sum(per_phase.values()) for per_phase in bed.metrics.msg_counts.values()
        )
        assert dropped < total_msgs * 0.2


class TestJoinStorm:
    def test_burst_of_joiners_mid_stream(self):
        bed = build_brisa_testbed(32, seed=83)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=300, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 2.0)
        joiners = [bed.spawn_joiner() for _ in range(16)]
        bed.sim.run(until=bed.sim.now + 28.0)
        integrated = [j for j in joiners if j.alive and j.streams.get(0) and j.streams[0].parents]
        assert len(integrated) >= 14
        # The enlarged structure remains complete and acyclic.
        g = extract_structure(bed.alive_nodes(), 0)
        ok, reason = is_complete_structure(g, source.node_id, set(bed.alive_ids()))
        assert ok, reason


class TestDagUnderStress:
    def test_dag_masks_failures_without_interruption(self):
        """The §II-G promise: with 2 parents, a failed parent causes no
        delivery gap at all for nodes keeping their second parent."""
        cfg = BrisaConfig(mode="dag", num_parents=2)
        bed = build_brisa_testbed(48, seed=84, config=cfg)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=400, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 4.0)
        # Kill 6 random non-source nodes at once.
        rng = bed.sim.rng("dag-kill")
        for v in rng.sample([n for n in bed.alive_nodes() if n is not source], 6):
            bed.network.crash(v.node_id)
        bed.sim.run(until=bed.sim.now + 36.0)
        injected = {seq for (s, seq) in bed.metrics.injections if s == 0}
        incomplete = [
            n.node_id for n in bed.alive_nodes()
            if n is not source and (injected - n.streams[0].delivered)
        ]
        assert not incomplete, incomplete

    def test_source_neighbors_all_fail(self):
        """Even the source's whole neighbourhood dying must not partition
        the dissemination: HyParView promotes passive replacements and the
        stream resumes.  Messages injected *during* the blackout age out
        of the bounded §II-F buffers and are legitimately lost (the paper
        itself protects the source in its churn experiments), so the
        assertions cover resumption and bounded loss, not perfection."""
        bed = build_brisa_testbed(48, seed=85)
        source = bed.choose_source()
        bed.start_stream(source, StreamConfig(count=500, rate=10.0, payload_bytes=64))
        bed.sim.run(until=bed.sim.now + 3.0)
        for peer in list(source.active):
            bed.network.crash(peer)
        # Run past the stream's 50 s injection span plus a drain.
        bed.sim.run(until=bed.sim.now + 60.0)
        assert len(source.active) >= 1, "source never recovered neighbours"
        receivers = [n for n in bed.alive_nodes() if n is not source]
        # Service resumed: the stream's final messages reach almost all.
        tail = range(490, 500)
        with_tail = sum(
            1 for n in receivers
            if all(seq in n.streams[0].delivered for seq in tail)
        )
        assert with_tail >= len(receivers) - 3
        # Loss is bounded by the blackout window, not unbounded decay.
        for n in receivers:
            assert len(n.streams[0].delivered) >= 400, n.node_id
