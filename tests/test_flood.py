"""Tests for the flooding baseline (Fig. 2 behaviour)."""

import pytest

from repro.config import HyParViewConfig, StreamConfig
from repro.experiments.common import build_flood_testbed


def flood_run(n=48, view=4, msgs=20, seed=5):
    hpv = HyParViewConfig(active_size=view)
    bed = build_flood_testbed(n, seed=seed, hpv_config=hpv)
    source = bed.choose_source()
    result = bed.run_stream(source, StreamConfig(count=msgs, rate=5.0, payload_bytes=128))
    return bed, source, result


class TestFloodCompleteness:
    def test_all_messages_reach_all_nodes(self):
        bed, source, result = flood_run()
        assert result.delivered_fraction() == 1.0

    def test_flooding_survives_failures(self):
        """§II-A: flooding stays complete while the overlay is connected."""
        bed, source, result = flood_run(n=64, seed=6)
        rng = bed.sim.rng("kill")
        victims = rng.sample([x for x in bed.alive_nodes() if x is not source], 10)
        for v in victims:
            bed.network.crash(v.node_id)
        bed.sim.run(until=bed.sim.now + 20.0)
        stream2 = StreamConfig(count=10, rate=5.0, payload_bytes=128, stream_id=1)
        result2 = bed.run_stream(source, stream2)
        assert result2.delivered_fraction() == 1.0


class TestFloodDuplicates:
    def test_duplicates_never_stop(self):
        """Flooding produces duplicates on every message (no deactivation):
        roughly (degree - 1) copies per node per message."""
        bed, source, result = flood_run(msgs=20)
        dups = result.duplicates_per_node()
        mean = sum(dups) / len(dups)
        # With view ~4-8 each node sees several duplicates per message.
        assert mean > 20  # >1 duplicate per message on average

    def test_larger_views_mean_more_duplicates(self):
        """The Fig. 2 trend: larger views yield more duplicates.  At 48
        nodes a view target of 10 cannot fully fill (mean degree ~8.5), so
        the ratio is asserted conservatively; the Fig. 2 bench checks the
        full-scale separation."""

        def mean_dups(view):
            _, _, result = flood_run(n=48, view=view, msgs=20, seed=7)
            d = result.duplicates_per_node()
            return sum(d) / len(d)

        assert mean_dups(10) > mean_dups(4) * 1.25

    def test_no_forwarding_of_duplicates(self):
        """Infect-and-die: total sends bounded by n * degree per message."""
        bed, source, result = flood_run(n=32, view=4, msgs=10, seed=8)
        sends = sum(bed.metrics.msg_counts["flood_data"].values())
        total_links = sum(len(n.active) for n in bed.alive_nodes())
        assert sends <= 10 * total_links * 1.1
