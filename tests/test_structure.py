"""Tests for structure extraction and analysis."""

import networkx as nx
import pytest

from repro.core.structure import (
    dag_depths,
    depths,
    extract_structure,
    is_complete_structure,
    out_degrees,
    parent_counts,
    structure_summary,
    to_dot,
    tree_depths,
)


def chain(*edges):
    g = nx.DiGraph()
    g.add_edges_from(edges)
    return g


class TestDepths:
    def test_tree_depths_shortest_path(self):
        g = chain((0, 1), (1, 2), (0, 3))
        assert tree_depths(g, 0) == {0: 0, 1: 1, 2: 2, 3: 1}

    def test_dag_depths_longest_path(self):
        # Diamond: 0->1->3 and 0->2->3 plus long route 0->1->2.
        g = chain((0, 1), (0, 2), (1, 2), (1, 3), (2, 3))
        # Longest path to 3: 0-1-2-3 = 3 hops.
        assert dag_depths(g, 0)[3] == 3
        assert tree_depths(g, 0)[3] == 2  # shortest differs

    def test_depth_dispatch(self):
        g = chain((0, 1), (1, 2))
        assert depths(g, 0, "tree") == depths(g, 0, "dag")

    def test_missing_source(self):
        assert tree_depths(chain((1, 2)), 0) == {}
        assert dag_depths(chain((1, 2)), 0) == {}


class TestCompleteness:
    def test_complete_tree_passes(self):
        g = chain((0, 1), (1, 2), (0, 3))
        ok, reason = is_complete_structure(g, 0)
        assert ok, reason

    def test_cycle_detected(self):
        g = chain((0, 1), (1, 2), (2, 1))
        ok, reason = is_complete_structure(g, 0)
        assert not ok and "cycle" in reason

    def test_unreachable_nodes_detected(self):
        g = chain((0, 1))
        g.add_node(9)
        ok, reason = is_complete_structure(g, 0)
        assert not ok and "unreachable" in reason

    def test_expected_nodes_override(self):
        g = chain((0, 1))
        g.add_node(9)
        ok, _ = is_complete_structure(g, 0, expected_nodes={0, 1})
        assert ok

    def test_source_absent(self):
        ok, reason = is_complete_structure(chain((1, 2)), 0)
        assert not ok and "absent" in reason


class TestDegreesAndCounts:
    def test_out_degrees(self):
        g = chain((0, 1), (0, 2), (1, 3))
        assert out_degrees(g) == {0: 2, 1: 1, 2: 0, 3: 0}

    def test_parent_counts_exclude_source(self):
        g = chain((0, 1), (0, 2), (1, 2))
        assert parent_counts(g, 0) == {1: 1, 2: 2}


class TestExtraction:
    def test_extract_from_node_objects(self):
        class FakeState:
            def __init__(self, parents):
                self.parents = {p: None for p in parents}

        class FakeNode:
            def __init__(self, nid, parents, alive=True):
                self.node_id = nid
                self.alive = alive
                self.streams = {0: FakeState(parents)}

        nodes = [FakeNode(0, []), FakeNode(1, [0]), FakeNode(2, [0, 1]), FakeNode(3, [2], alive=False)]
        g = extract_structure(nodes)
        assert set(g.nodes) == {0, 1, 2}
        assert set(g.edges) == {(0, 1), (0, 2), (1, 2)}

    def test_nodes_without_stream_state_are_isolated(self):
        class Bare:
            node_id = 5
            alive = True
            streams = {}

        g = extract_structure([Bare()])
        assert set(g.nodes) == {5}


class TestRendering:
    def test_to_dot_contains_all_edges(self):
        g = chain((0, 1), (1, 2))
        dot = to_dot(g, 0)
        assert '"n0" -> "n1";' in dot
        assert '"n1" -> "n2";' in dot
        assert "fillcolor=lightgrey" in dot  # source highlighted

    def test_structure_summary(self):
        g = chain((0, 1), (1, 2), (0, 3))
        s = structure_summary(g, 0)
        assert s["nodes"] == 4 and s["edges"] == 3
        assert s["max_depth"] == 2
        assert s["leaves"] == 2  # nodes 2 and 3
