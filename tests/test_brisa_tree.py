"""Integration tests: tree emergence from the bootstrap flood (§II-C/D/E)."""

import pytest

from repro.config import BrisaConfig, HyParViewConfig, StreamConfig
from repro.core.structure import (
    extract_structure,
    is_complete_structure,
    parent_counts,
    tree_depths,
)
from repro.experiments.common import build_brisa_testbed
from repro.sim.monitor import DISSEMINATION


@pytest.fixture(scope="module")
def tree_run():
    """One 64-node tree dissemination shared by the read-only assertions."""
    bed = build_brisa_testbed(64, seed=11)
    source = bed.choose_source()
    result = bed.run_stream(source, StreamConfig(count=40, rate=5.0, payload_bytes=512))
    return bed, source, result


class TestEmergence:
    def test_all_messages_delivered_everywhere(self, tree_run):
        _, _, result = tree_run
        assert result.delivered_fraction() == 1.0

    def test_structure_is_spanning_and_acyclic(self, tree_run):
        bed, source, result = tree_run
        ok, reason = result.structure_ok()
        assert ok, reason

    def test_every_node_has_exactly_one_parent(self, tree_run):
        bed, source, result = tree_run
        g = result.structure()
        counts = parent_counts(g, source.node_id)
        assert set(counts.values()) == {1}

    def test_source_has_no_parent(self, tree_run):
        bed, source, _ = tree_run
        assert source.parents_of(0) == []

    def test_steady_state_has_no_duplicates(self, tree_run):
        """After emergence, a tree delivers exactly one copy per message:
        the last message must produce zero duplicate receptions."""
        bed, source, result = tree_run
        sent = bed.metrics.msg_counts["brisa_data"][DISSEMINATION]
        n_receivers = len(result.receivers())
        # Total sends bounded by flood(first msgs) + ~1 send per receiver
        # for the remaining messages.
        assert sent < n_receivers * 40 * 1.35

    def test_duplicates_concentrated_in_bootstrap(self, tree_run):
        bed, source, result = tree_run
        dups = sum(result.duplicates_per_node())
        # Bounded by ~sum of degrees (each non-tree link fires O(1) dups
        # before deactivation), far below count * n.
        total_links = sum(len(n.active) for n in bed.alive_nodes())
        assert dups <= total_links * 2.5

    def test_paths_match_tree_structure(self, tree_run):
        """Each node's embedded path must equal the actual structure path."""
        bed, source, result = tree_run
        g = result.structure()
        depth_map = tree_depths(g, source.node_id)
        for node in bed.alive_nodes():
            if node is source:
                continue
            state = node.streams.get(0)
            assert state is not None and state.position is not None
            path = state.position
            assert path[0] == source.node_id
            assert path[-1] == node.node_id
            assert len(path) - 1 == depth_map[node.node_id]

    def test_construction_probes_recorded(self, tree_run):
        bed, _, _ = tree_run
        probes = bed.metrics.construction_probes
        assert len(probes) >= len(bed.nodes) * 0.5
        assert all(p.duration >= 0 for p in probes)

    def test_deactivations_were_sent(self, tree_run):
        bed, _, _ = tree_run
        assert bed.metrics.msg_counts["brisa_deactivate"][DISSEMINATION] > 0


class TestSourceBehaviour:
    def test_source_receives_no_data_in_steady_state(self):
        bed = build_brisa_testbed(24, seed=3)
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=30, rate=5.0, payload_bytes=64))
        # Every source neighbour either deactivated its outbound link to
        # the source, or has the source as its parent (in which case the
        # per-message sender exclusion already stops the backflow).
        for peer_id in source.active:
            peer = bed.node(peer_id)
            state = peer.streams.get(0)
            assert state is not None
            assert (
                source.node_id in state.out_deactivated
                or source.node_id in state.parents
            ), f"neighbour {peer_id} may still relay data back to the source"

    def test_source_never_records_deliveries(self):
        bed = build_brisa_testbed(24, seed=4)
        source = bed.choose_source()
        bed.run_stream(source, StreamConfig(count=10, rate=5.0, payload_bytes=64))
        sid = source.node_id
        for seq in range(10):
            assert sid not in bed.metrics.deliveries.get((0, seq), {})


class TestSymmetricDeactivation:
    def test_symmetric_config_reduces_deactivate_traffic(self):
        def run(symmetric):
            cfg = BrisaConfig(symmetric_deactivation=symmetric)
            bed = build_brisa_testbed(48, seed=7, config=cfg)
            source = bed.choose_source()
            bed.run_stream(source, StreamConfig(count=20, rate=5.0, payload_bytes=64))
            counts = bed.metrics.msg_counts["brisa_deactivate"]
            return sum(counts.values())

        # The optimization prunes outgoing links without extra messages, so
        # the deactivate count must not increase.
        assert run(True) <= run(False)


class TestViewSizeEffect:
    def test_larger_views_build_shallower_trees(self):
        """Fig. 6: larger active views allow more children, reducing depth."""

        def max_depth(active_size):
            hpv = HyParViewConfig(active_size=active_size)
            bed = build_brisa_testbed(96, seed=13, hpv_config=hpv)
            source = bed.choose_source()
            result = bed.run_stream(
                source, StreamConfig(count=15, rate=5.0, payload_bytes=64)
            )
            g = result.structure()
            d = tree_depths(g, source.node_id)
            return max(d.values())

        assert max_depth(8) <= max_depth(4)


class TestMultiStream:
    def test_independent_structures_per_stream(self):
        """§IV extension: several sources emerge independent trees over one
        overlay, keyed by stream id."""
        bed = build_brisa_testbed(32, seed=9)
        nodes = bed.alive_nodes()
        src_a, src_b = nodes[0], nodes[1]
        bed.start_stream(src_a, StreamConfig(count=10, rate=5.0, payload_bytes=64, stream_id=1))
        bed.start_stream(src_b, StreamConfig(count=10, rate=5.0, payload_bytes=64, stream_id=2))
        bed.sim.run(until=bed.sim.now + 30.0)
        g1 = extract_structure(bed.alive_nodes(), stream=1)
        g2 = extract_structure(bed.alive_nodes(), stream=2)
        ok1, r1 = is_complete_structure(g1, src_a.node_id, set(bed.alive_ids()))
        ok2, r2 = is_complete_structure(g2, src_b.node_id, set(bed.alive_ids()))
        assert ok1, r1
        assert ok2, r2
        # The two trees are rooted differently and generally differ.
        assert set(g1.edges) != set(g2.edges)
