"""Smoke tests: every CLI artifact renderer produces paper-style rows.

Runs `python -m repro run all` semantics at tiny scale — this exercises
every scenario + render path end to end.
"""

import pytest

from repro.cli import EXPERIMENTS


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_renderer_produces_rows(name):
    from repro.experiments.scale import get_scale

    _, render = EXPERIMENTS[name]
    out = render(get_scale())
    assert isinstance(out, str)
    assert "===" in out  # banner present
    assert len(out.splitlines()) >= 5  # headers + at least one data row
