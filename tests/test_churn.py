"""Tests for the churn driver."""

import pytest

from repro.sim.churn import ChurnDriver
from repro.sim.trace import parse_trace

from tests.helpers import RecorderNode, make_network


def drive(trace_text, n_initial=0, protected=(), seed=1, run_until=None):
    sim, net, nodes = make_network(n_initial, seed=seed)
    trace = parse_trace(trace_text)

    def join_fn():
        return net.spawn(RecorderNode)

    driver = ChurnDriver(sim, net, trace, join_fn, protected=protected)
    driver.apply()
    sim.run(until=run_until if run_until is not None else trace.end_time + 10)
    return sim, net, driver


def test_join_ramp_creates_nodes_spread_over_window():
    sim, net, driver = drive("from 0 s to 10 s join 10")
    assert driver.stats.joins == 10
    assert len(net.nodes) == 10
    assert driver.stats.join_times == pytest.approx([float(i) for i in range(10)])


def test_const_churn_kills_percentage_each_period():
    sim, net, driver = drive(
        "from 0 s to 1 s join 100\n"
        "from 10 s to 40 s const churn 10% each 10 s\n"
        "at 40 s stop",
    )
    # Three periods of ~10 kills each; replacement default ratio is 1.0.
    assert 25 <= driver.stats.kills <= 35
    assert driver.stats.joins == 100 + driver.stats.kills


def test_replacement_ratio_zero_means_no_replacement_joins():
    sim, net, driver = drive(
        "from 0 s to 1 s join 50\n"
        "at 5 s set replacement ratio to 0%\n"
        "from 10 s to 20 s const churn 10% each 10 s\n",
    )
    assert driver.stats.joins == 50
    assert driver.stats.kills == 5
    assert len(net.alive_ids()) == 45


def test_protected_nodes_never_killed():
    sim, net, driver = drive(
        "from 0 s to 1 s join 20\n"
        "at 1 s set replacement ratio to 0%\n"
        "from 5 s to 65 s const churn 50% each 10 s\n",
        protected={0},
    )
    assert net.alive(0)
    assert driver.stats.kills > 0


def test_stop_halts_further_churn():
    sim, net, driver = drive(
        "from 0 s to 1 s join 100\n"
        "at 2 s stop\n"
        "from 10 s to 100 s const churn 50% each 10 s\n",
    )
    assert driver.stopped
    assert driver.stats.kills == 0
    assert len(net.alive_ids()) == 100


def test_kill_times_fall_inside_churn_window():
    sim, net, driver = drive(
        "from 0 s to 1 s join 60\nfrom 10 s to 30 s const churn 10% each 10 s\n",
    )
    assert driver.stats.kills > 0
    assert all(10.0 <= t <= 30.0 + 1e-9 for t in driver.stats.kill_times)


def test_kills_per_minute_helper():
    sim, net, driver = drive(
        "from 0 s to 1 s join 100\nfrom 10 s to 70 s const churn 6% each 60 s\n",
    )
    assert driver.stats.kills_per_minute(60.0) == pytest.approx(driver.stats.kills)


def test_deterministic_under_same_seed():
    _, _, d1 = drive(
        "from 0 s to 1 s join 50\nfrom 5 s to 25 s const churn 20% each 5 s\n", seed=7
    )
    _, _, d2 = drive(
        "from 0 s to 1 s join 50\nfrom 5 s to 25 s const churn 20% each 5 s\n", seed=7
    )
    assert d1.stats.kill_times == d2.stats.kill_times
    assert d1.stats.join_times == d2.stats.join_times
