"""Tests for the bench-compare CI gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
import pathlib

spec = importlib.util.spec_from_file_location(
    "compare_bench",
    pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


def write(path: pathlib.Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


def scale_payload(*, events=200_000, deliveries=199_980, fraction=1.0,
                  speedup=2.8, occ_speedup=2.9) -> dict:
    return {
        "scale_run": {
            "events": events,
            "deliveries": deliveries,
            "delivered_fraction": fraction,
        },
        "microbench": {"speedup": speedup},
        "occupancy_microbench": {"speedup": occ_speedup},
    }


def test_identical_artifacts_pass(tmp_path):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    write(cand / "BENCH_scale.json", scale_payload())
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0


def test_regression_beyond_tolerance_fails(tmp_path, capsys):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    # Deliveries collapse by half: far beyond the 30% tolerance.
    write(cand / "BENCH_scale.json", scale_payload(deliveries=99_000))
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 1
    assert "deliveries" in capsys.readouterr().out


def test_event_count_growth_is_a_regression(tmp_path):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    # 'lower' direction: a 2x event-count blowup must fail.
    write(cand / "BENCH_scale.json", scale_payload(events=400_000))
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 1


def test_within_tolerance_passes(tmp_path):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    write(
        cand / "BENCH_scale.json",
        scale_payload(events=210_000, deliveries=180_000, speedup=2.0),
    )
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0


def test_ratio_metrics_get_wider_tolerance(tmp_path):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload(speedup=2.8))
    # 2.8 -> 1.3 is ~54% down: within the 60% ratio tolerance for
    # shared-runner throttling, even though far beyond the default 30%.
    write(cand / "BENCH_scale.json", scale_payload(speedup=1.3))
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0
    write(cand / "BENCH_scale.json", scale_payload(speedup=1.0))
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 1


def test_optional_entries_are_skipped_when_absent(tmp_path, capsys):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    payload = scale_payload()
    payload["xxl"] = {"delivered_fraction": 1.0, "events": 1_000_000}
    write(base / "BENCH_scale.json", payload)
    # PR CI artifacts carry no xxl entry (nightly-only): skipped, not failed.
    write(cand / "BENCH_scale.json", scale_payload())
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0
    assert "xxl.delivered_fraction absent" in capsys.readouterr().out


def test_new_candidate_only_metrics_are_informational(tmp_path, capsys):
    """A PR that *adds* bench entries (e.g. the multistream ones) must
    not fail against an older committed baseline that lacks them: the
    new values print as informational instead."""
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    payload = scale_payload()
    payload["multistream_microbench"] = {"efficiency": 0.93}
    payload["multistream"] = {"delivered_fraction": 1.0, "deliveries": 399_960}
    write(cand / "BENCH_scale.json", payload)
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "info" in out and "multistream_microbench.efficiency" in out
    assert "candidate=0.93" in out
    assert "informational" in out


def test_new_metrics_gate_once_baselined(tmp_path):
    """The informational grace applies only while the baseline lacks the
    metric; once committed, regressions fail as usual."""
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    payload = scale_payload()
    payload["multistream"] = {"delivered_fraction": 1.0, "deliveries": 399_960}
    write(base / "BENCH_scale.json", payload)
    broken = scale_payload()
    broken["multistream"] = {"delivered_fraction": 0.5, "deliveries": 199_980}
    write(cand / "BENCH_scale.json", broken)
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 1


def test_missing_files_are_skipped(tmp_path, capsys):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    write(base / "BENCH_scale.json", scale_payload())
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 0
    assert "no candidate artifact" in capsys.readouterr().out


def test_prune_xxl_strips_stale_nightly_entries(tmp_path, capsys):
    out = tmp_path / "out"
    out.mkdir()
    payload = scale_payload()
    payload["xxl"] = {"delivered_fraction": 1.0, "events": 1_000_000}
    write(out / "BENCH_scale.json", payload)
    assert compare_bench.main(["--prune-xxl", str(out)]) == 0
    pruned = json.loads((out / "BENCH_scale.json").read_text())
    assert "xxl" not in pruned
    assert pruned["scale_run"] == payload["scale_run"]
    assert "pruned" in capsys.readouterr().out
    # Idempotent on files with no xxl entry.
    assert compare_bench.main(["--prune-xxl", str(out)]) == 0


def test_structure_completeness_gate(tmp_path):
    base, cand = tmp_path / "base", tmp_path / "cand"
    base.mkdir(), cand.mkdir()
    brisa = {
        "scale_run": {
            "delivered_fraction": 1.0,
            "duplicates_per_node": 5.0,
            "events": 300_000,
            "structure_complete": True,
        },
        "bootstrap": {"speedup": 30.0},
    }
    write(base / "BENCH_scale_brisa.json", brisa)
    broken = json.loads(json.dumps(brisa))
    broken["scale_run"]["structure_complete"] = False
    write(cand / "BENCH_scale_brisa.json", broken)
    assert compare_bench.main(["--candidate", str(cand), "--baseline", str(base)]) == 1
