"""Tests for the distribution utilities."""

import pytest

from repro.metrics.stats import CDF, cdf_of, percentile_summary, rate_per_minute


class TestCDF:
    def test_of_sorts(self):
        c = CDF.of([3.0, 1.0, 2.0])
        assert c.values == (1.0, 2.0, 3.0)

    def test_fraction_at_most(self):
        c = cdf_of([1, 2, 3, 4])
        assert c.fraction_at_most(0) == 0.0
        assert c.fraction_at_most(2) == 0.5
        assert c.fraction_at_most(4) == 1.0
        assert c.fraction_at_most(10) == 1.0

    def test_percentiles(self):
        c = cdf_of(range(101))
        assert c.median == 50
        assert c.percentile(25) == 25
        assert c.min == 0 and c.max == 100

    def test_mean(self):
        assert cdf_of([1, 2, 3]).mean == pytest.approx(2.0)

    def test_empty(self):
        c = cdf_of([])
        assert c.empty
        assert c.fraction_at_most(1) == 0.0
        with pytest.raises(ValueError):
            c.percentile(50)
        with pytest.raises(ValueError):
            _ = c.mean
        assert c.summary() == {"n": 0}

    def test_series(self):
        c = cdf_of([1, 2, 3, 4])
        assert c.series([2, 4]) == [(2.0, 0.5), (4.0, 1.0)]

    def test_summary_keys(self):
        s = cdf_of([1, 2, 3]).summary()
        assert set(s) == {"n", "min", "p25", "median", "p75", "p90", "max", "mean"}


class TestPercentileSummary:
    def test_paper_percentiles_default(self):
        s = percentile_summary(range(100))
        assert set(s) == {5, 25, 50, 75, 90}
        assert s[50] == pytest.approx(49.5)

    def test_empty_sample(self):
        assert percentile_summary([]) == {5: 0.0, 25: 0.0, 50: 0.0, 75: 0.0, 90: 0.0}

    def test_custom_percentiles(self):
        s = percentile_summary([1, 2, 3], percentiles=(0, 100))
        assert s == {0: 1.0, 100: 3.0}


class TestRatePerMinute:
    def test_basic_rate(self):
        times = [10.0, 20.0, 30.0, 70.0]
        assert rate_per_minute(times, (0.0, 60.0)) == pytest.approx(3.0)

    def test_window_is_half_open(self):
        # [start, end): the event at end belongs to the next window, so
        # adjacent windows partition a timeline without double-counting.
        assert rate_per_minute([0.0, 60.0], (0.0, 60.0)) == pytest.approx(1.0)
        assert rate_per_minute([0.0, 60.0], (60.0, 120.0)) == pytest.approx(1.0)

    def test_adjacent_windows_partition(self):
        times = [0.0, 30.0, 60.0, 90.0, 120.0]
        total = sum(
            rate_per_minute(times, (lo, lo + 60.0)) for lo in (0.0, 60.0)
        )
        # 4 events inside [0, 120), none counted twice.
        assert total == pytest.approx(4.0)

    def test_empty_and_degenerate(self):
        assert rate_per_minute([], (0, 60)) == 0.0
        assert rate_per_minute([1.0], (5, 5)) == 0.0
