"""Tests for the shared multi-stream scale harness (DESIGN.md §10)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.scale_brisa import run_scale_brisa
from repro.experiments.scale_flood import (
    multistream_microbench,
    run_scale_flood,
)
from repro.experiments.scale_runner import (
    StreamOutcome,
    aggregate_outcomes,
    merge_json,
    outcomes_summary,
    spread_sources,
)
from repro.experiments.structural import relay_load_spread


class TestSpreadSources:
    def test_single_stream_keeps_the_head(self):
        assert spread_sources([10, 11, 12, 13], 1) == [10]

    def test_sources_spread_and_distinct(self):
        nodes = list(range(100))
        sources = spread_sources(nodes, 8)
        assert len(sources) == len(set(sources)) == 8
        assert sources[0] == 0 and sources[4] == 50

    def test_rejects_degenerate_requests(self):
        with pytest.raises(ValueError):
            spread_sources([1, 2, 3], 0)
        with pytest.raises(ValueError):
            spread_sources([1, 2, 3], 4)


class TestAggregation:
    def test_aggregate_outcomes(self):
        outcomes = [
            StreamOutcome(0, 1, receivers=10, deliveries=20, delivered_fraction=1.0),
            StreamOutcome(1, 2, receivers=10, deliveries=10, delivered_fraction=0.5),
        ]
        total, frac = aggregate_outcomes(outcomes, messages=2)
        assert total == 30
        assert frac == pytest.approx(30 / 40)
        text = outcomes_summary(outcomes)
        assert "stream 0" in text and "50.00%" in text

    def test_empty_population_is_vacuously_complete(self):
        total, frac = aggregate_outcomes(
            [StreamOutcome(0, 1, receivers=0, deliveries=0, delivered_fraction=1.0)],
            messages=5,
        )
        assert total == 0 and frac == 1.0


class TestMergeJson:
    def test_merge_preserves_disjoint_keys(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_json(path, {"a": 1})
        merge_json(path, {"b": {"x": 2}})
        data = json.loads(path.read_text())
        assert data == {"a": 1, "b": {"x": 2}}

    def test_merge_overwrites_same_key(self, tmp_path):
        path = tmp_path / "bench.json"
        merge_json(path, {"a": 1})
        data = merge_json(path, {"a": 3})
        assert data["a"] == 3

    def test_merge_replaces_corrupt_or_non_object_files(self, tmp_path):
        # A truncated file from an interrupted run must not cost the
        # finished run its results.
        path = tmp_path / "bench.json"
        path.write_text('{"a": 1,')  # truncated
        assert merge_json(path, {"b": 2}) == {"b": 2}
        path.write_text("[1, 2, 3]")  # not an object
        assert merge_json(path, {"b": 2}) == {"b": 2}
        assert json.loads(path.read_text()) == {"b": 2}


class TestMultiStreamFlood:
    def test_multistream_run_accounts_per_stream(self):
        result = run_scale_flood(96, 4, seed=5, streams=3)
        assert result.streams == 3
        assert len(result.per_stream) == 3
        assert {row["stream"] for row in result.per_stream} == {0, 1, 2}
        assert len({row["source"] for row in result.per_stream}) == 3
        for row in result.per_stream:
            assert row["receivers"] == 95  # everyone but the stream's source
            assert row["delivered_fraction"] == 1.0
        assert result.delivered_fraction == 1.0
        assert result.deliveries == 3 * 95 * 4
        assert "per-stream delivery" in result.summary()

    def test_kernels_match_on_multistream(self):
        a = run_scale_flood(96, 4, seed=5, streams=3, kernel="object")
        b = run_scale_flood(96, 4, seed=5, streams=3, kernel="slotted")
        assert a.per_stream == b.per_stream
        assert a.receptions == b.receptions
        assert a.events == b.events

    def test_single_stream_shape_unchanged(self):
        result = run_scale_flood(64, 5, seed=4)
        assert result.streams == 1
        assert result.per_stream[0]["receivers"] == 63
        assert result.survivors == 63
        assert result.delivered_fraction == 1.0

    def test_too_many_streams_rejected(self):
        with pytest.raises(ValueError):
            run_scale_flood(16, 2, streams=17)
        with pytest.raises(ValueError):
            run_scale_flood(16, 2, streams=0)

    def test_degenerate_workloads_fail_fast(self):
        # Rejected before the overlay build / bootstrap runs: at xxl the
        # build alone costs minutes, so the guard must come first
        # (streams > population included — both entry points know n).
        for kwargs in ({"messages": 0}, {"rate": 0.0}, {"streams": 0},
                       {"streams": 17}):
            with pytest.raises(ValueError):
                run_scale_flood(16, **{"messages": 2, **kwargs})
            with pytest.raises(ValueError):
                run_scale_brisa(16, **{"messages": 2, **kwargs})


class TestMultiStreamBrisa:
    def test_multistream_emerges_independent_structures(self):
        result = run_scale_brisa(128, 6, rate=10.0, seed=5, streams=4)
        assert result.streams == 4
        assert result.structure_complete, result.structure_reason
        assert result.delivered_fraction == 1.0
        assert len(result.per_stream) == 4
        for row in result.per_stream:
            assert row["structure_complete"], row["structure_reason"]
            assert row["delivered_fraction"] == 1.0
        rs = result.relay_spread
        assert rs is not None
        assert rs["streams"] == 4
        assert rs["distinct_sets"] is True
        assert rs["interior_all"] <= min(rs["interior_per_stream"].values())
        assert rs["interior_any"] <= rs["population"]
        assert rs["fan_in_max"] >= 1
        assert "relay-load spread" in result.summary()

    def test_single_stream_has_no_relay_report(self):
        result = run_scale_brisa(64, 3, rate=10.0, seed=4)
        assert result.streams == 1
        assert result.relay_spread is None
        assert result.structure_complete


class TestRelayLoadSpread:
    def test_relay_spread_on_synthetic_structures(self):
        class FakeNode:
            def __init__(self, node_id, parents_by_stream):
                self.node_id = node_id
                self.alive = True
                self.streams = {
                    s: type("S", (), {"parents": p})()
                    for s, p in parents_by_stream.items()
                }

        # Stream 0: 0 -> 1 -> 2; stream 1: 2 -> 1 -> 0 (reversed chain).
        nodes = [
            FakeNode(0, {0: [], 1: [1]}),
            FakeNode(1, {0: [0], 1: [2]}),
            FakeNode(2, {0: [1], 1: []}),
        ]
        rs = relay_load_spread(nodes, [0, 1])
        assert rs.interior_per_stream == {0: 2, 1: 2}
        assert rs.interior_any == 3  # 0 and 2 relay once, 1 relays twice
        assert rs.interior_all == 1  # only node 1 is interior in both
        assert rs.distinct_sets is True
        assert rs.fan_in_max == 2
        assert rs.fan_in_mean == pytest.approx(4 / 3)
        assert rs.children_max == 2
        assert "sets differ: yes" in rs.summary()

    def test_identical_sets_not_distinct(self):
        class FakeNode:
            def __init__(self, node_id, parents_by_stream):
                self.node_id = node_id
                self.alive = True
                self.streams = {
                    s: type("S", (), {"parents": p})()
                    for s, p in parents_by_stream.items()
                }

        nodes = [
            FakeNode(0, {0: [], 1: []}),
            FakeNode(1, {0: [0], 1: [0]}),
        ]
        rs = relay_load_spread(nodes, [0, 1])
        assert rs.distinct_sets is False
        assert rs.interior_any == rs.interior_all == 1


def test_multistream_microbench_small():
    mb = multistream_microbench(nodes=128, messages=3, streams=4, seed=2, repeats=1)
    assert mb.streams == 4
    assert mb.multi_receptions > mb.single_receptions > 0
    assert mb.efficiency > 0
    assert mb.multi_result is not None and mb.multi_result.streams == 4
    d = mb.to_dict()
    assert "efficiency" in d and "multi_result" not in d
    assert "per-stream efficiency" in mb.summary()
