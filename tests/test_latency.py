"""Tests for the latency models."""

import statistics

import pytest

from repro.sim.latency import ClusterLatency, ConstantLatency, PlanetLabLatency


class TestConstantLatency:
    def test_fixed_delay(self):
        model = ConstantLatency(0.005)
        assert model.sample(0, 1) == 0.005
        assert model.expected_owd(3, 7) == 0.005
        assert model.expected_rtt(3, 7) == 0.010

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestClusterLatency:
    def test_sub_millisecond_rtts(self):
        model = ClusterLatency(seed=1)
        rtts = [model.sample(0, 1) + model.sample(1, 0) for _ in range(500)]
        assert all(r > 0 for r in rtts)
        # The paper's cluster is switched GbE: RTTs well under 5 ms.
        assert statistics.mean(rtts) < 0.005

    def test_expected_close_to_sample_mean(self):
        model = ClusterLatency(seed=2)
        mean = statistics.mean(model.sample(0, 1) for _ in range(4000))
        assert mean == pytest.approx(model.expected_owd(0, 1), rel=0.25)


class TestPlanetLabLatency:
    def test_deterministic_base(self):
        a = PlanetLabLatency(seed=5)
        b = PlanetLabLatency(seed=5)
        assert a.expected_owd(1, 2) == b.expected_owd(1, 2)

    def test_seed_changes_topology(self):
        a = PlanetLabLatency(seed=5)
        b = PlanetLabLatency(seed=6)
        assert a.expected_owd(1, 2) != b.expected_owd(1, 2)

    def test_wide_area_rtt_distribution(self):
        model = PlanetLabLatency(seed=7)
        rtts = []
        for i in range(60):
            for j in range(i + 1, 60):
                rtts.append(model.expected_rtt(i, j))
        med = statistics.median(rtts)
        # Median RTT in the ballpark of published PlanetLab studies.
        assert 0.02 < med < 0.25
        # A heavy tail exists: some pairs are much slower than the median.
        assert max(rtts) > 2.5 * med

    def test_asymmetric_directions(self):
        model = PlanetLabLatency(seed=8)
        diffs = [
            abs(model.expected_owd(i, j) - model.expected_owd(j, i))
            for i, j in [(0, 1), (2, 3), (4, 5), (6, 7)]
        ]
        assert any(d > 0 for d in diffs)

    def test_samples_vary_and_exceed_base(self):
        model = PlanetLabLatency(seed=9)
        samples = [model.sample(0, 1) for _ in range(50)]
        assert len(set(samples)) > 1
        assert min(samples) > model._base_owd(0, 1)

    def test_all_delays_positive(self):
        model = PlanetLabLatency(seed=10)
        for i in range(20):
            for j in range(20):
                if i != j:
                    assert model.sample(i, j) > 0
