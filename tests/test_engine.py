"""Unit tests for the event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for label in range(10):
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock advanced to the until bound
    sim.run()
    assert fired == [1, 5]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []
    assert not handle.active


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def first():
        sim.schedule(1.0, fired.append, "second")
        fired.append("first")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending >= 1


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.next_event_time() == 2.0


def test_next_event_time_empty():
    sim = Simulator()
    assert sim.next_event_time() is None


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_max_events_break_does_not_move_clock_backwards():
    """Regression: ``run(until=T, max_events=N)`` used to advance ``now``
    to ``T`` even when live events before ``T`` remained, so the next
    ``run()`` moved virtual time backwards."""
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda: seen.append(sim.now))
    sim.run(until=10.0, max_events=2)
    # Two events processed; three more pend before the until bound, so the
    # clock must sit at the last processed event, not at 10.0.
    assert seen == [1.0, 2.0]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]
    # Virtual time is monotone across the two runs.
    assert all(a <= b for a, b in zip(seen, seen[1:]))
    assert sim.now == 10.0


def test_max_events_break_past_until_still_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    # The cap is not hit before the until bound: remaining events all lie
    # beyond it, so advancing to ``until`` is safe and expected.
    sim.run(until=2.0, max_events=10)
    assert fired == [1]
    assert sim.now == 2.0


def test_until_not_advanced_when_cancelled_events_hide_live_one():
    sim = Simulator()
    fired = []
    h = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(1.5, fired.append, "live")
    h.cancel()
    sim.run(until=3.0, max_events=0)
    # No events processed; the live 1.5 s event forbids jumping to 3.0.
    assert sim.now == 0.0
    sim.run(until=3.0)
    assert fired == ["live"]
    assert sim.now == 3.0


class TestFastTier:
    """call_later/call_at: fire-and-forget events on pooled handles."""

    def test_call_later_runs_in_order_with_scheduled_events(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "handle")
        sim.call_later(1.0, order.append, "pooled-early")
        sim.call_later(3.0, order.append, "pooled-late")
        sim.run()
        assert order == ["pooled-early", "handle", "pooled-late"]

    def test_call_later_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_later(-0.5, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_handles_are_recycled_through_the_free_list(self):
        sim = Simulator()
        hops = []

        def hop(n):
            hops.append(n)
            if n > 0:
                sim.call_later(1.0, hop, n - 1)

        sim.call_later(0.0, hop, 99)
        sim.run()
        assert len(hops) == 100
        # A sequential chain keeps exactly one handle in flight: the slab
        # never grows past it, proving events reuse the freed entry.
        assert sim.pool_size == 1

    def test_pool_high_water_tracks_concurrent_events(self):
        sim = Simulator()
        for i in range(50):
            sim.call_later(1.0 + i * 0.001, lambda: None)
        sim.run()
        assert sim.pool_size == 50
        # The next burst draws from the pool instead of allocating.
        for i in range(50):
            sim.call_later(1.0 + i * 0.001, lambda: None)
        assert sim.pool_size == 0
        sim.run()
        assert sim.pool_size == 50

    def test_peak_pending_records_backlog_high_water(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.peak_pending == 10
        sim.run()
        assert sim.peak_pending == 10


class TestRunUntilIdle:
    def test_drains_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.call_later(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        assert sim.run_until_idle() == 3
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_honours_stop(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.call_later(3.0, fired.append, 3)
        sim.run_until_idle()
        assert fired == [1]
        assert sim.pending >= 1

    def test_skips_cancelled_handles(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        h.cancel()
        sim.call_later(2.0, fired.append, "y")
        sim.run_until_idle()
        assert fired == ["y"]

    def test_not_reentrant(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run_until_idle()

        sim.call_later(1.0, reenter)
        sim.run_until_idle()

    def test_counts_events_processed(self):
        sim = Simulator()
        for i in range(4):
            sim.call_later(float(i), lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 4


def test_rng_streams_are_deterministic_and_independent():
    a1 = Simulator(seed=7).rng("x").random()
    a2 = Simulator(seed=7).rng("x").random()
    b = Simulator(seed=7).rng("y").random()
    assert a1 == a2
    assert a1 != b


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not task.running

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: (ticks.append(sim.now), task.stop()))
        task.start()
        sim.run(until=10.0)
        assert ticks == [1.0]

    def test_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        task.start()
        sim.run(until=2.5)
        assert ticks == [1.0, 2.0]

    def test_jitter_requires_rng_and_spreads_periods(self):
        sim = Simulator(seed=3)
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now), jitter=0.3, rng=sim.rng("j"))
        task.start()
        sim.run(until=20.0)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(0.7 <= g <= 1.3 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1  # actually jittered

    def test_start_delay_override(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now), start_delay=0.5)
        task.start()
        sim.run(until=6.0)
        assert ticks == [0.5, 5.5]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=1.5)

    def test_restart_after_stop_reapplies_start_delay(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now), start_delay=0.5)
        task.start()
        sim.run(until=6.0)
        assert ticks == [0.5, 5.5]
        task.stop()
        sim.run(until=20.0)
        assert ticks == [0.5, 5.5]
        # A restart behaves exactly like the first start: the start_delay
        # override applies again, then the regular period takes over.
        task.start()
        assert task.running
        sim.run(until=26.5)
        assert ticks == [0.5, 5.5, 20.5, 25.5]

    def test_stop_inside_fn_cancels_reschedule_and_allows_restart(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: (ticks.append(sim.now), task.stop()))
        task.start()
        sim.run(until=10.0)
        # stop() from inside fn() during _fire: exactly one firing, no
        # pending handle left behind.
        assert ticks == [1.0]
        assert not task.running
        assert task._handle is None
        task.start()
        sim.run(until=20.0)
        assert ticks == [1.0, 11.0]
        assert not task.running

    def test_stop_before_first_firing_cancels_cleanly(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now), start_delay=5.0)
        task.start()
        sim.run(until=2.0)
        task.stop()
        sim.run(until=10.0)
        assert ticks == []
        # Restarting schedules afresh from the stop point.
        task.start()
        sim.run(until=15.5)
        assert ticks == [15.0]


class TestBatchDrain:
    """The batch-drain tier (DESIGN.md §12): contiguous same-time runs
    of one pooled function are claimed off the heap top and handed to a
    registered drain as a single list of args tuples."""

    @staticmethod
    def _sim_with_drain(batches):
        sim = Simulator()
        fn = batches and None  # placeholder for clarity; fn defined below

        def deliver(tag):  # the pooled event function
            raise AssertionError(f"per-event dispatch for {tag}")

        sim.register_batch_drain(deliver, batches.append)
        return sim, deliver

    def test_same_time_run_arrives_as_one_batch(self):
        batches = []
        sim, deliver = self._sim_with_drain(batches)
        for i in range(4):
            sim.call_at(1.0, deliver, i)
        sim.call_at(2.0, deliver, 99)
        assert sim.run() == 5
        assert batches == [[(0,), (1,), (2,), (3,)], [(99,)]]
        assert sim.events_processed == 5

    def test_claim_breaks_on_other_functions_and_times(self):
        order = []
        sim = Simulator()
        # Claims match by identity: pin the bound method once (a fresh
        # `order.append` per call would never merge into a run).
        fn = order.append
        sim.register_batch_drain(
            fn, lambda batch: order.append(("batch", len(batch)))
        )
        other = lambda: order.append("other")  # noqa: E731
        sim.call_at(1.0, fn)
        sim.call_at(1.0, fn)
        sim.call_at(1.0, other)  # same time, different fn: breaks the run
        sim.call_at(1.0, fn)     # claimed as a fresh batch
        sim.run_until_idle()
        assert order == [("batch", 2), "other", ("batch", 1)]

    def test_cancellable_handles_keep_per_event_dispatch(self):
        hits = []
        sim = Simulator()
        fn = hits.append
        sim.register_batch_drain(fn, lambda batch: hits.append(("batch", len(batch))))
        sim.call_at(1.0, fn, "pooled")
        sim.schedule_at(1.0, fn, "handle")   # cancellable: never claimed
        sim.call_at(1.0, fn, "pooled2")
        sim.run()
        # The handle event splits the run: batches of 1 around it.
        assert hits == [("batch", 1), "handle", ("batch", 1)]

    def test_max_events_counts_each_constituent_once(self):
        batches = []
        sim, deliver = self._sim_with_drain(batches)
        for i in range(6):
            sim.call_at(1.0, deliver, i)
        # Budget of 4 stops mid-wave: the claim is capped, the surplus
        # two events stay queued for the next run().
        assert sim.run(max_events=4) == 4
        assert batches == [[(0,), (1,), (2,), (3,)]]
        assert sim.events_processed == 4
        assert sim.run(max_events=10) == 2
        assert batches == [[(0,), (1,), (2,), (3,)], [(4,), (5,)]]
        assert sim.events_processed == 6

    def test_max_events_boundary_exactly_at_wave_edge(self):
        batches = []
        sim, deliver = self._sim_with_drain(batches)
        for i in range(3):
            sim.call_at(1.0, deliver, i)
        sim.call_at(2.0, deliver, 9)
        # Budget equals the first wave: the 2.0 wave must NOT start.
        assert sim.run(max_events=3) == 3
        assert batches == [[(0,), (1,), (2,)]]
        assert sim.now == 1.0
        assert sim.run() == 1
        assert batches[-1] == [(9,)]
        assert sim.now == 2.0

    def test_stop_inside_drain_halts_after_batch(self):
        sim = Simulator()
        seen = []

        def fn():
            raise AssertionError("unreachable")

        def drain(batch):
            seen.append(len(batch))
            sim.stop()

        sim.register_batch_drain(fn, drain)
        for _ in range(3):
            sim.call_at(1.0, fn)
        sim.call_at(2.0, fn)
        # stop() lands after the in-flight batch, like any event.
        assert sim.run_until_idle() == 3
        assert seen == [1] or seen == [3]
        # The 1.0 wave is one claim: all three counted, 2.0 still queued.
        assert seen == [3]
        assert sim.next_event_time() == 2.0

    def test_drain_scheduling_more_work_keeps_draining(self):
        """A drain that schedules the next wave (the fan-out pattern)."""
        sim = Simulator()
        waves = []

        def fn(x):
            raise AssertionError("unreachable")

        def drain(batch):
            waves.append([a[0] for a in batch])
            if len(waves) < 3:
                sim.call_at_many(
                    sim.now + 1.0, fn, [(x * 10,) for a in batch for x in a]
                )

        sim.register_batch_drain(fn, drain)
        sim.call_at_many(0.5, fn, [(1,), (2,)])
        assert sim.run_until_idle() == 6
        assert waves == [[1, 2], [10, 20], [100, 200]]
        assert sim.now == 2.5

    def test_call_at_many_matches_repeated_call_at(self):
        """call_at_many is exactly N call_at calls: same FIFO order,
        same pooling, same peak_pending accounting."""
        runs = []
        for bulk in (False, True):
            sim = Simulator()
            order = []
            fn = order.append
            if bulk:
                sim.call_at_many(1.0, fn, [(i,) for i in range(5)])
            else:
                for i in range(5):
                    sim.call_at(1.0, fn, i)
            sim.run()
            runs.append((order, sim.events_processed, sim.peak_pending,
                         sim.pool_size))
        assert runs[0] == runs[1]
        assert runs[0][0] == list(range(5))

    def test_call_at_many_in_past_rejected(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at_many(0.5, lambda: None, [()])
