"""Tests for the HyParView peer sampling service."""

import networkx as nx
import pytest

from repro.config import HyParViewConfig
from repro.membership.hyparview import HyParViewNode
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.monitor import Metrics
from repro.sim.network import Network


def build_overlay(n, *, cfg=None, seed=1, join_spacing=0.05, settle=30.0, delay=0.001):
    """Bootstrap an n-node HyParView overlay and let it stabilize."""
    cfg = cfg or HyParViewConfig()
    sim = Simulator(seed=seed)
    net = Network(sim, ConstantLatency(delay), Metrics(record_deliveries=False))
    nodes = [net.spawn(lambda network, nid: HyParViewNode(network, nid, cfg))]
    rng = sim.rng("bootstrap")

    def add_one(i):
        node = net.spawn(lambda network, nid: HyParViewNode(network, nid, cfg))
        contact = rng.choice([x.node_id for x in nodes])
        node.join(contact)
        nodes.append(node)

    for i in range(1, n):
        sim.schedule(i * join_spacing, add_one, i)
    sim.run(until=n * join_spacing + settle)
    return sim, net, nodes


def overlay_graph(nodes):
    g = nx.Graph()
    for node in nodes:
        if node.alive:
            g.add_node(node.node_id)
            for peer in node.active:
                g.add_edge(node.node_id, peer)
    return g


class TestJoin:
    def test_two_node_join_is_mutual(self):
        sim, net, nodes = build_overlay(2)
        a, b = nodes
        assert b.node_id in a.active
        assert a.node_id in b.active
        assert net.linked(a.node_id, b.node_id)

    def test_overlay_is_connected(self):
        sim, net, nodes = build_overlay(64)
        g = overlay_graph(nodes)
        assert g.number_of_nodes() == 64
        assert nx.is_connected(g)

    def test_views_are_bidirectional(self):
        sim, net, nodes = build_overlay(48)
        by_id = {n.node_id: n for n in nodes}
        for node in nodes:
            for peer in node.active:
                assert node.node_id in by_id[peer].active, (
                    f"{node.node_id} -> {peer} not mutual"
                )

    def test_every_node_has_a_neighbor(self):
        sim, net, nodes = build_overlay(64)
        assert all(len(n.active) >= 1 for n in nodes)

    def test_degrees_bounded_by_expansion_cap(self):
        cfg = HyParViewConfig(active_size=4, expansion_factor=2.0)
        sim, net, nodes = build_overlay(64, cfg=cfg)
        assert all(len(n.active) <= cfg.max_active for n in nodes)

    def test_degree_concentrates_near_target(self):
        cfg = HyParViewConfig(active_size=4, expansion_factor=2.0)
        sim, net, nodes = build_overlay(96, cfg=cfg)
        mean_degree = sum(len(n.active) for n in nodes) / len(nodes)
        assert 3.0 <= mean_degree <= 8.0


class TestPassiveView:
    def test_shuffles_populate_passive_views(self):
        sim, net, nodes = build_overlay(48, settle=60.0)
        filled = sum(1 for n in nodes if len(n.passive) > 0)
        assert filled >= len(nodes) * 0.9

    def test_passive_respects_capacity(self):
        cfg = HyParViewConfig(passive_size=8)
        sim, net, nodes = build_overlay(48, cfg=cfg, settle=60.0)
        assert all(len(n.passive) <= 8 for n in nodes)

    def test_passive_never_contains_self_or_active(self):
        sim, net, nodes = build_overlay(48, settle=60.0)
        for n in nodes:
            assert n.node_id not in n.passive
            assert not (n.passive & set(n.active))


class TestFailureHandling:
    def test_failed_neighbor_removed_and_replaced(self):
        sim, net, nodes = build_overlay(48, settle=60.0)
        victim = nodes[5]
        peers = [net.nodes[p] for p in victim.active]
        net.crash(victim.node_id)
        sim.run(until=sim.now + 30.0)
        for peer in peers:
            if peer.alive:
                assert victim.node_id not in peer.active
                assert victim.node_id not in peer.passive
                # Replacement from passive keeps the view near target.
                assert len(peer.active) >= 1

    def test_overlay_survives_30pct_failures(self):
        sim, net, nodes = build_overlay(80, settle=60.0)
        rng = sim.rng("killer")
        victims = rng.sample(nodes, 24)
        for v in victims:
            net.crash(v.node_id)
        sim.run(until=sim.now + 60.0)
        survivors = [n for n in nodes if n.alive]
        g = overlay_graph(survivors)
        assert nx.is_connected(g)
        assert all(len(n.active) >= 1 for n in survivors)

    def test_neighbor_down_listener_fired_on_failure(self):
        sim, net, nodes = build_overlay(16, settle=30.0)
        events = []

        class Listener:
            def neighbor_up(self, peer):
                events.append(("up", peer))

            def neighbor_down(self, peer, failure):
                events.append(("down", peer, failure))

        observer = nodes[0]
        observer.add_membership_listener(Listener())
        target = next(iter(observer.active))
        net.crash(target)
        sim.run(until=sim.now + 5.0)
        assert ("down", target, True) in events


class TestEvictionSemantics:
    def test_disconnect_moves_peer_to_passive(self):
        cfg = HyParViewConfig(active_size=1, expansion_factor=1.0)
        sim = Simulator(seed=3)
        net = Network(sim, ConstantLatency(0.001), Metrics())
        a, b, c = (
            net.spawn(lambda network, nid: HyParViewNode(network, nid, cfg))
            for _ in range(3)
        )
        b.join(a.node_id)
        sim.run(until=5.0)
        assert a.active and b.active
        # c joins a: a's active is full (cap 1) -> b evicted to passive.
        c.join(a.node_id)
        sim.run(until=10.0)
        assert len(a.active) <= cfg.max_active

    def test_expansion_factor_allows_growth_past_target(self):
        cfg = HyParViewConfig(active_size=2, expansion_factor=2.0)
        sim, net, nodes = build_overlay(24, cfg=cfg, settle=30.0)
        sizes = [len(n.active) for n in nodes]
        assert max(sizes) <= cfg.max_active == 4
        # Some node actually used the expansion headroom.
        assert any(s > cfg.active_size for s in sizes)


class TestCrashCleansState:
    def test_crash_clears_views_and_timers(self):
        sim, net, nodes = build_overlay(8, settle=20.0)
        victim = nodes[3]
        net.crash(victim.node_id)
        assert victim.active == {} and victim.passive == set()
        assert not victim.alive
