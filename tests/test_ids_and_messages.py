"""Tests for wire-size accounting across all message families."""

import pytest

from repro.baselines.flood import FloodData
from repro.baselines.plumtree import Gossip, Graft, IHave, Prune
from repro.baselines.simplegossip import Digest, Rumor
from repro.baselines.simpletree import TreeData, TreeJoinReply
from repro.baselines.tag import ListProbeReply, Pull, Segment
from repro.core.messages import (
    Activate,
    ActivateAck,
    Data,
    Deactivate,
    DepthUpdate,
    ReactivateOrder,
    RetransmitRequest,
)
from repro.ids import HEADER_BYTES, NODE_ID_BYTES, path_metadata_bytes
from repro.membership.messages import ForwardJoin, Join, Shuffle
from repro.sim.message import Message


def test_base_message_is_header_only():
    assert Message().size_bytes() == HEADER_BYTES


def test_path_metadata_matches_paper_example():
    # §II-D: a 7-hop path with 48-bit ids costs 336 bits = 42 bytes.
    assert path_metadata_bytes(7) == 42
    assert NODE_ID_BYTES == 6


def test_data_payload_dominates_size():
    small = Data(0, 1, 0, path=(1,))
    big = Data(0, 1, 100_000, path=(1,))
    assert big.size_bytes() - small.size_bytes() == 100_000


def test_control_messages_are_tiny():
    for msg in (
        Deactivate(0),
        Activate(0),
        ReactivateOrder(0),
        DepthUpdate(0, 3),
        RetransmitRequest(0, 5),
        Prune(0),
        IHave(0, 1),
        Graft(0, 1),
        Join(),
    ):
        assert msg.size_bytes() < 2 * HEADER_BYTES, type(msg).__name__


def test_ack_meta_size_matches_predictor():
    assert ActivateAck(0, path=(1, 2, 3)).body_bytes() >= 3 * NODE_ID_BYTES
    assert ActivateAck(0, depth=4).body_bytes() < ActivateAck(0, path=(1, 2, 3)).body_bytes()


def test_shuffle_scales_with_entries():
    small = Shuffle(0, (1,), 3)
    large = Shuffle(0, tuple(range(8)), 3)
    assert large.size_bytes() > small.size_bytes()


def test_forward_join_carries_id_and_ttl():
    assert ForwardJoin(5, 3).body_bytes() == NODE_ID_BYTES + 1


def test_digest_scales_with_extras():
    assert Digest(0, 5, frozenset({7, 9})).body_bytes() > Digest(0, 5, frozenset()).body_bytes()


def test_payload_messages_consistent_across_protocols():
    """All protocols ship the same payload: their data messages must cost
    within a small constant of each other (fair bandwidth comparisons)."""
    payload = 1024
    sizes = {
        "brisa": Data(0, 1, payload, depth=3).size_bytes(),
        "flood": FloodData(0, 1, payload).size_bytes(),
        "gossip": Rumor(0, 1, payload).size_bytes(),
        "tree": TreeData(0, 1, payload).size_bytes(),
        "tag": Segment(0, 1, payload).size_bytes(),
        "plumtree": Gossip(0, 1, payload).size_bytes(),
    }
    assert max(sizes.values()) - min(sizes.values()) < 64, sizes


def test_tag_pull_and_probe_sizes():
    assert Pull(((0, 5),)).body_bytes() > 0
    assert ListProbeReply(1, 2, True).body_bytes() == 2 * NODE_ID_BYTES + 1
    assert TreeJoinReply(3).body_bytes() == NODE_ID_BYTES
